"""Critical-path latency attribution over the causal span graph.

The tracer records client ops as root spans, protocol phases (lock
waits, CAS-retry cleanup, degraded EC reads) as child spans, and fabric
verbs as leaves carrying their own ``queue_us`` / ``service_us`` /
``rtt_us`` decomposition.  This module walks that graph and answers the
question the paper's resource arguments all hinge on: *where did each
op's latency go?*

Every op's duration is decomposed into seven components:

``lock_wait``
    time inside a Meta-lock poll/takeover phase (§3.2.2 remark 2),
``cas_retry``
    time spent invalidating an orphan KV and unlocking after a lost
    commit CAS (Algorithm 1 line 18),
``degraded_read``
    time reconstructing a lost block from its stripe (§3.4.1),
``queue`` / ``service`` / ``rtt``
    the op's remaining fabric time, split proportionally to the queue
    wait, NIC service, and propagation recorded per verb span,
``other``
    whatever is left — client-side compute, recovery-milestone stalls,
    allocation RPC waits.

**Conservation is by construction**: the components are a disjoint
segmentation of the op's interval — phase spans claim their (clipped,
de-overlapped) sub-intervals first, verbs outside phases claim theirs,
and ``other`` is the measured remainder — so the sum equals the op's
measured duration to float precision.  ``tests/test_obs_v2.py`` asserts
this on hand-built graphs and real fig8/fig9 smoke runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.stats import percentile

__all__ = [
    "COMPONENTS",
    "PHASE_COMPONENTS",
    "op_breakdowns",
    "aggregate",
    "attribution_tables",
    "check_conservation",
    "render_attribution",
]

#: Component keys, in reporting order.
COMPONENTS = ("queue", "service", "rtt", "lock_wait", "cas_retry",
              "degraded_read", "other")

#: Phase-span names -> component, claimed in priority order (a degraded
#: read nested inside a retry phase counts as degraded read).
PHASE_COMPONENTS = {
    "degraded_read": "degraded_read",
    "cas_retry": "cas_retry",
    "lock_wait": "lock_wait",
}
_PHASE_PRIORITY = ("degraded_read", "cas_retry", "lock_wait")

Interval = Tuple[float, float]


# ----------------------------------------------------------------------
# interval arithmetic (closed-open [s, e) segments)
# ----------------------------------------------------------------------

def _merge(intervals: List[Interval]) -> List[Interval]:
    if not intervals:
        return []
    intervals = sorted(intervals)
    out = [intervals[0]]
    for s, e in intervals[1:]:
        ls, le = out[-1]
        if s <= le:
            if e > le:
                out[-1] = (ls, e)
        else:
            out.append((s, e))
    return out


def _subtract(base: List[Interval],
              holes: List[Interval]) -> List[Interval]:
    """base minus holes; both must be merged/sorted."""
    out: List[Interval] = []
    hi = 0
    for s, e in base:
        cur = s
        while hi < len(holes) and holes[hi][1] <= cur:
            hi += 1
        j = hi
        while j < len(holes) and holes[j][0] < e:
            hs, he = holes[j]
            if hs > cur:
                out.append((cur, hs))
            cur = max(cur, he)
            if cur >= e:
                break
            j += 1
        if cur < e:
            out.append((cur, e))
    return out


def _clip(intervals: List[Interval], lo: float,
          hi: float) -> List[Interval]:
    out = []
    for s, e in intervals:
        s, e = max(s, lo), min(e, hi)
        if e > s:
            out.append((s, e))
    return out


def _length(intervals: List[Interval]) -> float:
    return sum(e - s for s, e in intervals)


# ----------------------------------------------------------------------
# per-op decomposition
# ----------------------------------------------------------------------

def _subtree(op_id: int, children: Dict[Optional[int], List]) -> List:
    """(span, under_phase) pairs for every descendant of *op_id*."""
    out = []
    stack = [(op_id, False)]
    while stack:
        parent, under = stack.pop()
        for child in children.get(parent, ()):
            is_phase = child.cat == "phase"
            out.append((child, under))
            stack.append((child.id, under or is_phase))
    return out


def op_breakdowns(obs, *, ops: Optional[Sequence[str]] = None,
                  start: Optional[float] = None,
                  end: Optional[float] = None) -> List[Dict]:
    """Per-op component breakdown rows, one per root op span.

    ``ops`` filters by op name; ``start``/``end`` restrict to ops whose
    span begins inside the window (e.g. the measured window only).
    Every row satisfies ``sum(components) == duration_us`` to float
    precision.
    """
    children = obs.tracer.children_of()
    rows: List[Dict] = []
    for op in obs.tracer.spans_by(cat="op"):
        if ops is not None and op.name not in ops:
            continue
        if start is not None and op.start < start:
            continue
        if end is not None and op.start >= end:
            continue
        s, e = op.start, op.end
        duration = max(0.0, e - s)
        comp = {c: 0.0 for c in COMPONENTS}
        if duration <= 0.0:
            rows.append(_row(op, duration, comp))
            continue
        descendants = _subtree(op.id, children)

        # 1. phase spans claim their sub-intervals, by priority, with
        #    later categories only taking what is still unclaimed.
        claimed: List[Interval] = []
        by_phase: Dict[str, List[Interval]] = {}
        for span, _under in descendants:
            if span.cat == "phase" and span.name in PHASE_COMPONENTS:
                by_phase.setdefault(span.name, []).append(
                    (span.start, span.end))
        for name in _PHASE_PRIORITY:
            if name not in by_phase:
                continue
            mine = _subtract(_merge(_clip(by_phase[name], s, e)), claimed)
            comp[PHASE_COMPONENTS[name]] = _length(mine)
            claimed = _merge(claimed + mine)

        # 2. verbs outside any phase claim their uncovered remainder,
        #    split proportionally to their recorded decomposition.
        verb_ivals: List[Interval] = []
        weights = {"queue": 0.0, "service": 0.0, "rtt": 0.0}
        for span, under in descendants:
            if span.cat != "verb" or under:
                continue
            verb_ivals.append((span.start, span.end))
            args = span.args or {}
            weights["queue"] += args.get("queue_us", 0.0)
            weights["service"] += args.get("service_us", 0.0)
            weights["rtt"] += args.get("rtt_us", 0.0)
        fabric = _subtract(_merge(_clip(verb_ivals, s, e)), claimed)
        fabric_total = _length(fabric)
        wsum = weights["queue"] + weights["service"] + weights["rtt"]
        if fabric_total > 0.0:
            if wsum > 0.0:
                comp["queue"] = fabric_total * weights["queue"] / wsum
                comp["rtt"] = fabric_total * weights["rtt"] / wsum
                # assign the residue to service so the three sum exactly
                comp["service"] = fabric_total - comp["queue"] - comp["rtt"]
            else:
                comp["service"] = fabric_total

        # 3. the measured remainder.
        comp["other"] = max(0.0, duration - _length(claimed) - fabric_total)
        rows.append(_row(op, duration, comp))
    return rows


def _row(op, duration: float, comp: Dict[str, float]) -> Dict:
    row = {"op": op.name, "track": op.track,
           "start_ms": op.start * 1e3,
           "duration_us": duration * 1e6}
    row.update({c: comp[c] * 1e6 for c in COMPONENTS})
    return row


def check_conservation(rows: Sequence[Dict],
                       rel_tol: float = 1e-9,
                       abs_tol: float = 1e-6) -> None:
    """Assert components sum to the measured duration for every row
    (tolerances in µs terms; raises AssertionError with the first
    offender)."""
    for row in rows:
        total = sum(row[c] for c in COMPONENTS)
        bound = abs_tol + rel_tol * abs(row["duration_us"])
        if abs(total - row["duration_us"]) > bound:
            raise AssertionError(
                f"attribution leak on {row['op']}@{row['track']} "
                f"t={row['start_ms']:.3f}ms: components sum to "
                f"{total:.6f}us but the op took "
                f"{row['duration_us']:.6f}us")


# ----------------------------------------------------------------------
# aggregation + reporting
# ----------------------------------------------------------------------

def aggregate(rows: Sequence[Dict],
              tail_pct: float = 99.0) -> List[Dict]:
    """Mean component breakdown per op name, plus a ``<OP> p99+`` row
    aggregating only the ops at or above that name's *tail_pct*
    latency — the "why is the tail high" view."""
    by_name: Dict[str, List[Dict]] = {}
    for row in rows:
        by_name.setdefault(row["op"], []).append(row)
    out: List[Dict] = []
    for name in sorted(by_name):
        group = by_name[name]
        out.append(_aggregate_rows(name, group))
        if len(group) >= 20:
            cut = percentile([r["duration_us"] for r in group], tail_pct)
            tail = [r for r in group if r["duration_us"] >= cut]
            if tail and len(tail) < len(group):
                out.append(_aggregate_rows(
                    f"{name} p{tail_pct:g}+", tail))
    return out


def _aggregate_rows(label: str, group: Sequence[Dict]) -> Dict:
    n = len(group)
    mean_dur = sum(r["duration_us"] for r in group) / n
    agg = {"op": label, "count": n, "mean_us": mean_dur}
    for c in COMPONENTS:
        mean_c = sum(r[c] for r in group) / n
        agg[f"{c}_us"] = mean_c
        agg[f"{c}_pct"] = (100.0 * mean_c / mean_dur) if mean_dur else 0.0
    return agg


def attribution_tables(obs, *, measured_only: bool = True) -> List[Dict]:
    """The JSON-ready aggregate attribution table for one bundle.

    ``measured_only`` scopes ops to the last harness measurement window
    (between the ``measure.open``/``measure.close`` instants) when one
    was recorded, matching what the BENCH rows report.
    """
    start = end = None
    if measured_only:
        opens = [i.at for i in obs.tracer.instants
                 if i.name == "measure.open"]
        closes = [i.at for i in obs.tracer.instants
                  if i.name == "measure.close"]
        start = opens[-1] if opens else None
        end = closes[-1] if closes else None
    rows = op_breakdowns(obs, start=start, end=end)
    check_conservation(rows)
    return [{k: (round(v, 4) if isinstance(v, float) else v)
             for k, v in row.items()} for row in aggregate(rows)]


def render_attribution(tables: Sequence[Dict],
                       title: str = "Latency attribution "
                                    "(mean us per op)") -> str:
    """Human-readable attribution table (component means + shares)."""
    from ..bench.common import format_table
    columns = ["op", "count", "mean_us"]
    columns += [f"{c}_us" for c in COMPONENTS]
    rows = []
    for table in tables:
        row = dict(table)
        # render shares inline for the dominant component
        top = max(COMPONENTS, key=lambda c: table.get(f"{c}_us", 0.0))
        row["top"] = f"{top} {table.get(f'{top}_pct', 0.0):.0f}%"
        rows.append(row)
    return format_table(title, columns + ["top"], rows)
