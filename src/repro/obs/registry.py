"""Counter / gauge / histogram registry with text exposition.

The windowed :class:`~repro.obs.metrics.MetricsCollector` answers "how
busy was each resource over simulated time"; this registry answers the
operational question "what are the totals right now" in the shape every
scrape-based monitoring stack expects: named counters, gauges, and
fixed-bucket histograms, exported in the Prometheus text exposition
format (``# TYPE`` / ``# HELP`` comments plus ``name{label="v"} value``
sample lines).  ``tools/bench_trend.py`` and the serving front-end use
it to publish totals that diff cleanly across runs.

Everything is plain dict arithmetic on simulated quantities — no wall
clock, no background scrape thread — so exposition output is
deterministic for a seeded run.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram buckets (seconds): µs-scale op latencies up to ms.
DEFAULT_BUCKETS = (1e-6, 2e-6, 5e-6, 10e-6, 20e-6, 50e-6,
                   100e-6, 200e-6, 500e-6, 1e-3, 5e-3)


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def samples(self) -> Iterable[Tuple[str, Dict[str, str], float]]:
        yield self.name, {}, self.value


class Gauge:
    """Set-to-current value (queue depths, ring occupancy)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self) -> Iterable[Tuple[str, Dict[str, str], float]]:
        yield self.name, {}, self.value


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus ``le`` semantics)."""

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def samples(self) -> Iterable[Tuple[str, Dict[str, str], float]]:
        cumulative = 0
        for bound, n in zip(self.bounds, self.counts):
            cumulative += n
            yield (self.name + "_bucket", {"le": _fmt_value(float(bound))},
                   float(cumulative))
        yield (self.name + "_bucket", {"le": "+Inf"}, float(self.count))
        yield self.name + "_sum", {}, self.sum
        yield self.name + "_count", {}, float(self.count)


class MetricsRegistry:
    """Named metric instruments plus the text exposition exporter."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _register(self, metric):
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{type(existing).__name__}")
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def clear(self) -> None:
        self._metrics.clear()

    # -- export ----------------------------------------------------------

    def to_dict(self) -> Dict[str, float]:
        """Flat {sample_name{labels}: value} snapshot (for BENCH json)."""
        out: Dict[str, float] = {}
        for name in self.names():
            for sample, labels, value in self._metrics[name].samples():
                out[sample + _fmt_labels(labels)] = value
        return out

    def exposition(self) -> str:
        """Prometheus text exposition format, metrics in name order."""
        kinds = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {kinds[type(metric)]}")
            for sample, labels, value in metric.samples():
                lines.append(
                    f"{sample}{_fmt_labels(labels)} {_fmt_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def ingest_counters(self, counters: Dict[str, float],
                        prefix: str = "") -> None:
        """Bulk-load a plain counter dict (e.g. a StatsRegistry's) as
        registry counters — names are sanitised to exposition charset."""
        for key, value in counters.items():
            safe = "".join(c if c.isalnum() or c == "_" else "_"
                           for c in prefix + key)
            if value >= 0:
                self.counter(safe).inc(value)
            else:
                self.gauge(safe).set(value)
