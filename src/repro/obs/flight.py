"""Always-on flight recorder: a bounded ring of cheap structured events.

Tracing (``--trace``) is opt-in because full span capture costs memory
proportional to the run; postmortems need the opposite trade — a tiny,
constant-cost record that is *always* there when something trips.  The
flight recorder is that record: a ``deque(maxlen=N)`` of
``(sim_time, kind, detail)`` tuples fed from the hot paths that already
aggregate (op completions, notable counters, fault markers), running in
every run — bench, chaos, frontend, tests — whether or not an
:class:`~repro.obs.Observability` bundle is enabled.

It is dumped to a ``FLIGHT_<reason>.json`` artifact when one of three
triggers fires:

* the chaos oracle fails a scenario (``repro.chaos``),
* a per-tenant SLO verdict flips to FAIL (``repro.frontend``),
* an unhandled exception escapes the engine (the harness failure
  checks in ``ClusterBase.run``, the workload runner, and the chaos
  drain).

Recording never affects results: events are append-only side records
with no RNG, no timing feedback, and no allocation beyond the tuple —
``tests/test_obs_v2.py`` pins recorder-on/off result neutrality, and
``benchmarks/sim_perf.py --check`` gates the overhead at <= 5%.

Environment knobs: ``REPRO_FLIGHT=0`` disables recording entirely,
``REPRO_FLIGHT_CAP`` resizes the ring (default 4096 events), and
``REPRO_FLIGHT_DIR`` redirects dumps (default: current directory; the
CLIs point it at their ``--json-dir``).
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, List, Optional

__all__ = ["FlightRecorder", "RECORDER", "note", "dump", "dump_on_failure"]

ENV_ENABLE = "REPRO_FLIGHT"
ENV_CAP = "REPRO_FLIGHT_CAP"
ENV_DIR = "REPRO_FLIGHT_DIR"
DEFAULT_CAP = 4096


def _env_cap() -> int:
    try:
        return max(16, int(os.environ.get(ENV_CAP, DEFAULT_CAP)))
    except ValueError:
        return DEFAULT_CAP


class FlightRecorder:
    """Bounded ring buffer of (sim_time, kind, detail) events."""

    __slots__ = ("events", "enabled", "dumped", "_dump_seq")

    def __init__(self, cap: Optional[int] = None,
                 enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get(ENV_ENABLE, "1") != "0"
        self.events: deque = deque(maxlen=cap or _env_cap())
        self.enabled = enabled
        #: Paths written by :meth:`dump` (newest last), for reporting.
        self.dumped: List[str] = []
        self._dump_seq = 0

    # -- recording (hot path: one truth test + one append) ---------------

    def note(self, t: float, kind: str, detail=None) -> None:
        if self.enabled:
            self.events.append((t, kind, detail))

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- dumping ----------------------------------------------------------

    def snapshot(self) -> List[Dict]:
        """JSON-safe view of the ring, oldest first."""
        out = []
        for t, kind, detail in self.events:
            ev: Dict = {"t": t, "kind": kind}
            if detail is not None:
                ev["detail"] = detail
            out.append(ev)
        return out

    def dump(self, reason: str, directory: Optional[str] = None,
             context: Optional[Dict] = None) -> str:
        """Write ``FLIGHT_<reason>[_<n>].json`` and return its path.

        ``reason`` is slugified into the filename; repeated dumps for
        the same reason in one process get ``_1``, ``_2``, ... suffixes
        so earlier postmortems are never overwritten.
        """
        if directory is None:
            directory = os.environ.get(ENV_DIR, ".")
        slug = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in reason) or "event"
        suffix = f"_{self._dump_seq}" if self._dump_seq else ""
        self._dump_seq += 1
        path = os.path.join(directory, f"FLIGHT_{slug}{suffix}.json")
        payload = {
            "reason": reason,
            "capacity": self.events.maxlen,
            "recorded": len(self.events),
            "events": self.snapshot(),
        }
        if context:
            payload["context"] = context
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        self.dumped.append(path)
        return path


#: The process-wide recorder every subsystem feeds.  A singleton (not
#: per-cluster) on purpose: a postmortem wants the interleaved history
#: of *everything* the process simulated, and the frontend/chaos
#: harnesses build several clusters per run.
RECORDER = FlightRecorder()


def note(t: float, kind: str, detail=None) -> None:
    """Module-level convenience for the process-wide recorder."""
    RECORDER.note(t, kind, detail)


def dump(reason: str, directory: Optional[str] = None,
         context: Optional[Dict] = None) -> str:
    return RECORDER.dump(reason, directory=directory, context=context)


def dump_on_failure(reason: str, context: Optional[Dict] = None,
                    directory: Optional[str] = None) -> Optional[str]:
    """Best-effort dump used by failure paths already mid-raise: never
    let the postmortem write mask the original exception."""
    if not RECORDER.enabled and not RECORDER.events:
        return None
    try:
        return RECORDER.dump(reason, directory=directory, context=context)
    except OSError:
        return None
