"""Zipfian key-popularity generators (YCSB-compatible).

The YCSB macrobenchmarks use a Zipfian request distribution with
theta = 0.99 over the loaded key space; this is the standard Gray et al.
generator as implemented in YCSB, plus the *scrambled* variant that
hashes ranks so the hottest keys are spread over the key space (and thus
over MNs and index buckets).
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..index.hashing import hash64

__all__ = ["ZipfianGenerator", "ScrambledZipfian", "LatestGenerator"]

_DEFAULT_THETA = 0.99


class ZipfianGenerator:
    """Ranks in [0, n) with P(rank) proportional to 1 / (rank+1)^theta."""

    def __init__(self, n: int, theta: float = _DEFAULT_THETA,
                 rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError("need at least one item")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random(0x5EED)
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = ((1 - (2.0 / n) ** (1 - theta))
                    / (1 - self.zeta2 / self.zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_rank(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)


class ScrambledZipfian:
    """Zipfian ranks scrambled over the item space via a stable hash."""

    def __init__(self, n: int, theta: float = _DEFAULT_THETA,
                 rng: Optional[random.Random] = None):
        self._zipf = ZipfianGenerator(n, theta, rng)
        self.n = n

    def next_index(self) -> int:
        rank = self._zipf.next_rank()
        return hash64(rank.to_bytes(8, "little"), b"scramble") % self.n


class LatestGenerator:
    """YCSB's "latest" distribution (workload D): recent inserts are hot."""

    def __init__(self, initial_n: int, theta: float = _DEFAULT_THETA,
                 rng: Optional[random.Random] = None):
        self.n = initial_n
        self.theta = theta
        self.rng = rng or random.Random(0x1A7E)
        self._zipf = ZipfianGenerator(max(initial_n, 1), theta, self.rng)

    def grow(self) -> int:
        """Register a newly inserted item; returns its index."""
        index = self.n
        self.n += 1
        # Rebuild lazily: exact zeta recompute per insert is O(n); amortise
        # by rebuilding when the space has grown 10%.
        if self.n > self._zipf.n * 1.1:
            self._zipf = ZipfianGenerator(self.n, self.theta, self.rng)
        return index

    def next_index(self) -> int:
        rank = self._zipf.next_rank()
        return max(0, self.n - 1 - rank)
