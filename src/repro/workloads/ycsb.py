"""YCSB core workloads A-D (§4.1) plus parameterised read/update mixes.

* A: 50% SEARCH / 50% UPDATE          * B: 95% SEARCH / 5% UPDATE
* C: 100% SEARCH                      * D: 95% SEARCH / 5% INSERT (latest)

Keys follow the default Zipfian distribution (theta = 0.99) over a shared
key space of (scaled-down) one million keys; all clients draw from the
same space, so hot keys contend — the regime Aceso's single-CAS commit is
built for.
"""

from __future__ import annotations

import random
from bisect import bisect
from itertools import accumulate
from typing import Iterator, Tuple

from .micro import Op
from .zipf import LatestGenerator, ScrambledZipfian

__all__ = ["YCSB_MIXES", "ycsb_key", "ycsb_load_ops", "ycsb_stream",
           "mix_stream"]

YCSB_MIXES = {
    "A": {"SEARCH": 0.5, "UPDATE": 0.5},
    "B": {"SEARCH": 0.95, "UPDATE": 0.05},
    "C": {"SEARCH": 1.0},
    "D": {"SEARCH": 0.95, "INSERT": 0.05},
}


def ycsb_key(index: int) -> bytes:
    return b"user%012d" % index


def _value(rng: random.Random, size: int) -> bytes:
    return rng.randbytes(size)


def ycsb_load_ops(cli_id: int, num_clients: int, total_keys: int,
                  value_size: int, seed: int = 0):
    """Partition the shared key space across clients for loading."""
    rng = random.Random((seed << 20) | cli_id)
    return [("INSERT", ycsb_key(i), _value(rng, value_size))
            for i in range(cli_id, total_keys, num_clients)]


def ycsb_stream(workload: str, cli_id: int, total_keys: int,
                value_size: int, theta: float = 0.99,
                seed: int = 0) -> Iterator[Op]:
    """Endless op stream for one client of a YCSB core workload."""
    try:
        mix = YCSB_MIXES[workload.upper()]
    except KeyError:
        raise ValueError(f"unknown YCSB workload {workload!r}") from None
    return mix_stream(mix, cli_id, total_keys, value_size, theta=theta,
                      seed=seed, latest=(workload.upper() == "D"))


def mix_stream(mix: dict, cli_id: int, total_keys: int, value_size: int,
               *, theta: float = 0.99, seed: int = 0,
               latest: bool = False) -> Iterator[Op]:
    """Endless stream drawing verbs from *mix* and keys Zipf-distributed.

    ``mix`` maps verb -> probability (must sum to 1).  With ``latest``,
    reads favour recently inserted keys (YCSB D) and INSERTs extend the
    key space; insert keys are salted per client so clients never collide.
    """
    if abs(sum(mix.values()) - 1.0) > 1e-9:
        raise ValueError(f"mix probabilities sum to {sum(mix.values())}")
    rng = random.Random((seed << 20) | (cli_id * 7919 + 13))
    verbs = sorted(mix)
    # Inlined ``rng.choices(verbs, weights)[0]``: same bisect over the
    # cumulative weights, same single random() draw (so the RNG sequence —
    # and thus every seeded run — is unchanged), without rebuilding the
    # cumulative table on every op.
    cum_weights = list(accumulate(mix[v] for v in verbs))
    total = cum_weights[-1]
    hi = len(cum_weights) - 1
    rand = rng.random
    if latest:
        gen = LatestGenerator(total_keys, rng=rng)
    else:
        gen = ScrambledZipfian(total_keys, theta, rng=rng)
    insert_seq = 0
    while True:
        verb = verbs[bisect(cum_weights, rand() * total, 0, hi)]
        if verb == "INSERT":
            if latest:
                index = gen.grow()
                key = ycsb_key(index)
            else:
                key = b"new-%04d-%08d" % (cli_id, insert_seq)
                insert_seq += 1
            yield ("INSERT", key, _value(rng, value_size))
        elif verb == "UPDATE":
            yield ("UPDATE", ycsb_key(gen.next_index()),
                   _value(rng, value_size))
        elif verb == "DELETE":
            yield ("DELETE", ycsb_key(gen.next_index()), b"")
        else:
            yield ("SEARCH", ycsb_key(gen.next_index()), b"")
