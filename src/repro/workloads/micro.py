"""Microbenchmarks (§4.2): per-client unique keys, no concurrent conflicts.

Each client owns a disjoint key range; the four request types (INSERT,
UPDATE, SEARCH, DELETE) are measured separately against pre-loaded data
(except INSERT, which measures fresh keys).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Tuple

__all__ = ["Op", "micro_key", "load_ops", "micro_stream"]

Op = Tuple[str, bytes, bytes]  # (verb, key, value)


def micro_key(cli_id: int, index: int) -> bytes:
    return b"c%04d-k%08d" % (cli_id, index)


def _value(rng: random.Random, size: int) -> bytes:
    return rng.randbytes(size)


def load_ops(cli_id: int, count: int, value_size: int,
             seed: int = 0) -> List[Op]:
    """INSERTs that pre-load a client's key range."""
    rng = random.Random((seed << 16) | cli_id)
    return [("INSERT", micro_key(cli_id, i), _value(rng, value_size))
            for i in range(count)]


def micro_stream(verb: str, cli_id: int, loaded: int, value_size: int,
                 seed: int = 0) -> Iterator[Op]:
    """Endless stream of one request type over a client's own keys.

    INSERT streams fresh keys beyond the loaded range; DELETE alternates
    delete/re-insert so the stream never exhausts the key space (each
    DELETE is still a genuine delete of a live key).
    """
    rng = random.Random((seed << 16) | cli_id | 0xD00D)
    if verb == "INSERT":
        for i in itertools.count(loaded):
            yield ("INSERT", micro_key(cli_id, i), _value(rng, value_size))
    elif verb in ("UPDATE", "SEARCH"):
        while True:
            i = rng.randrange(loaded)
            key = micro_key(cli_id, i)
            value = _value(rng, value_size) if verb == "UPDATE" else b""
            yield (verb, key, value)
    elif verb == "DELETE":
        i = 0
        while True:
            key = micro_key(cli_id, i % loaded)
            yield ("DELETE", key, b"")
            yield ("INSERT", key, _value(rng, value_size))
            i += 1
    else:
        raise ValueError(f"unknown verb {verb!r}")
