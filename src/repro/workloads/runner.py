"""Multi-client workload driver.

Runs one closed-loop process per client against a cluster (Aceso or
FUSEE), with a load phase, a warm-up, and a measurement window; results
come from the cluster's shared :class:`~repro.sim.stats.StatsRegistry`.

DELETE streams that re-insert, MN crashes mid-run, and degraded phases
all work: errors a workload expects (key-not-found after a racy delete)
are tolerated and counted, anything else fails the run loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..errors import KeyNotFoundError, RetryBudgetExceeded
from .micro import Op

__all__ = ["RunResult", "WorkloadRunner"]


@dataclass
class RunResult:
    """Summary of one measurement window."""

    duration: float
    per_op: Dict[str, Dict[str, float]]
    counters: Dict[str, float]
    total_ops: int

    @property
    def total_mops(self) -> float:
        return self.total_ops / self.duration / 1e6

    def throughput(self, op: str) -> float:
        entry = self.per_op.get(op)
        return entry["throughput"] if entry else 0.0

    def p50(self, op: str) -> float:
        entry = self.per_op.get(op)
        return entry["p50_us"] if entry else float("nan")

    def p99(self, op: str) -> float:
        entry = self.per_op.get(op)
        return entry["p99_us"] if entry else float("nan")

    def mean_cas(self, op: str) -> float:
        entry = self.per_op.get(op)
        return entry["mean_cas"] if entry else 0.0


class WorkloadRunner:
    """Drives clients of one cluster through load + measured phases."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.env = cluster.env
        #: Measurement-phase generation.  Each ``measure`` call gets its
        #: own token and bumps it again at close, so a client loop from
        #: a previous phase that outlives the drain window can never be
        #: resurrected by the next phase (it exits at its next op
        #: boundary instead of competing with the new phase's streams —
        #: at saturated scales a resurrected closed loop re-arms at the
        #: same timestamp with an earlier seq and starves the new
        #: phase's ops off the per-client serial path entirely).
        self._gen = 0

    # -- load phase ----------------------------------------------------------

    def load(self, ops_per_client: List[List[Op]],
             deadline: float = 1e6) -> None:
        """Run fixed op lists to completion (not measured)."""
        self.cluster.start()
        procs = []
        for client, ops in zip(self.cluster.clients, ops_per_client):
            procs.append(self.env.process(
                self._run_fixed(client, ops), name=f"load@{client.cli_id}"
            ))
        done = self.env.all_of(procs)
        self.env.run_until_event(done, limit=self.env.now + deadline)
        self._raise_failures()

    def _run_fixed(self, client, ops: Iterable[Op]):
        for verb, key, value in ops:
            yield from self._dispatch(client, verb, key, value)

    # -- measured phase ----------------------------------------------------------

    def measure(self, streams: List[Iterator[Op]], duration: float,
                warmup: float = 0.0) -> RunResult:
        """Closed-loop run: warm up, then measure for *duration* sim
        seconds; returns the aggregate result."""
        self.cluster.start()
        self._gen += 1
        gen = self._gen
        procs = []
        for client, stream in zip(self.cluster.clients, streams):
            procs.append(self.env.process(
                self._run_stream(client, stream, gen),
                name=f"loop@{client.cli_id}",
            ))
        if warmup > 0:
            self.env.run(until=self.env.now + warmup)
        stats = self.cluster.stats
        obs = getattr(self.cluster, "obs", None)
        stats.open_window(self.env.now)
        if obs is not None and obs.enabled:
            obs.tracer.instant("measure.open", cat="harness",
                               track="harness")
        self.env.run(until=self.env.now + duration)
        stats.close_window(self.env.now)
        if obs is not None and obs.enabled:
            obs.tracer.instant("measure.close", cat="harness",
                               track="harness")
        self._gen += 1
        # Let every loop retire (each exits at its next op boundary) so
        # no generator leaks into a later measurement phase.  Waiting on
        # the processes — not a fixed time slice — matters at saturated
        # scales, where an in-flight op can outlive any fixed drain.
        # The limit stays well below the allocation retry budget
        # (64 x bitmap_flush_interval): a client mid-retry under pool
        # pressure cannot make progress in a quiesced system (retired
        # peers no longer flush the bitmaps that surface reclamation
        # candidates), so it must survive the drain and be rescued by
        # the next phase's traffic.  The generation token already keeps
        # it from issuing new ops, so a straggler is harmless.
        done = self.env.all_of(procs)
        self.env.run_until_event(done, limit=self.env.now + 0.05,
                                 strict=False)
        self._raise_failures()
        return RunResult(
            duration=stats.window,
            per_op=stats.summary(),
            counters=dict(stats.counters),
            total_ops=stats.total_ops(),
        )

    def _run_stream(self, client, stream: Iterator[Op], gen: int):
        for verb, key, value in stream:
            if self._gen != gen or not client.alive:
                return
            yield from self._dispatch(client, verb, key, value)

    # -- op dispatch -------------------------------------------------------------

    def _dispatch(self, client, verb: str, key: bytes, value: bytes):
        try:
            if verb == "SEARCH":
                yield from client.search(key)
            elif verb == "UPDATE":
                yield from client.update(key, value)
            elif verb == "INSERT":
                yield from client.insert(key, value)
            elif verb == "DELETE":
                yield from client.delete(key)
            else:
                raise ValueError(f"unknown verb {verb!r}")
        except KeyNotFoundError:
            pass  # expected under racy delete/search mixes
        except RetryBudgetExceeded:
            self.cluster.stats.bump("retry_budget_exceeded")

    def _raise_failures(self) -> None:
        failures = self.env.unexpected_failures()
        if failures:
            proc = failures[0]
            from ..obs import flight
            flight.dump_on_failure("workload-failure", context={
                "first": proc.name, "error": repr(proc.value),
                "failed": len(failures),
            })
            raise AssertionError(
                f"workload process failed: {proc.name}: {proc.value!r}"
            ) from proc.value
