"""Replay real key-value trace files (e.g. Twitter's cache traces [84]).

The paper replays three clusters from Yang et al.'s open Twitter cache
dataset.  The traces are too large to ship here, but users who download
them can replay them directly: this module parses the published CSV format

    timestamp,anonymized key,key size,value size,client id,operation,TTL

and turns each record into the runner's ``(verb, key, value)`` ops, with
round-robin sharding across clients.  Unknown/irrelevant operations
(``incr``, ``prepend``...) map onto the nearest of the four core verbs.

Without a trace file, :mod:`repro.workloads.twitter` provides the
synthetic per-cluster mixes the benchmarks use.
"""

from __future__ import annotations

import itertools
from typing import IO, Iterable, Iterator, Optional, Union

from .micro import Op

__all__ = ["parse_trace_line", "replay_trace", "trace_stream",
           "OP_MAPPING"]

#: Twitter-trace operations -> the KV store's four core verbs.
OP_MAPPING = {
    "get": "SEARCH",
    "gets": "SEARCH",
    "set": "UPDATE",
    "cas": "UPDATE",
    "replace": "UPDATE",
    "append": "UPDATE",
    "prepend": "UPDATE",
    "incr": "UPDATE",
    "decr": "UPDATE",
    "add": "INSERT",
    "delete": "DELETE",
}


def parse_trace_line(line: str, max_value: int = 4096) -> Optional[Op]:
    """One CSV record -> (verb, key, value); None for malformed lines."""
    parts = line.strip().split(",")
    if len(parts) < 6:
        return None
    _ts, key, _key_size, value_size, _client, operation = parts[:6]
    verb = OP_MAPPING.get(operation.strip().lower())
    if verb is None or not key:
        return None
    if verb in ("SEARCH", "DELETE"):
        return (verb, key.encode(), b"")
    try:
        size = min(max(int(value_size), 1), max_value)
    except ValueError:
        size = 64
    return (verb, key.encode(), b"\x00" * size)


def replay_trace(source: Union[str, IO[str]], *,
                 limit: Optional[int] = None,
                 max_value: int = 4096) -> Iterator[Op]:
    """Stream ops from a trace file path or open text handle."""
    own = isinstance(source, str)
    handle = open(source, "r") if own else source
    try:
        count = 0
        for line in handle:
            op = parse_trace_line(line, max_value=max_value)
            if op is None:
                continue
            yield op
            count += 1
            if limit is not None and count >= limit:
                return
    finally:
        if own:
            handle.close()


def trace_stream(ops: Iterable[Op], cli_id: int, num_clients: int,
                 *, loop: bool = True) -> Iterator[Op]:
    """Shard a trace across clients (record i goes to client i mod n).

    With ``loop`` the shard repeats forever, as the timed runner expects;
    the ops must then be a re-iterable sequence (e.g. a list), not a
    one-shot generator.
    """
    if num_clients < 1 or not 0 <= cli_id < num_clients:
        raise ValueError("need 0 <= cli_id < num_clients")
    while True:
        yield from itertools.islice(ops, cli_id, None, num_clients)
        if not loop:
            return
