"""Twitter production-trace stand-ins (§4.1, [84]).

The paper replays three traces from Yang et al.'s Twitter cache study.
The traces themselves are not redistributable, and the evaluation exploits
exactly one property of each: its op mix.

* STORAGE   — a storage-cluster cache: read-dominated;
* COMPUTE   — compute-generated data, frequently modified: update-heavy;
* TRANSIENT — short-lived data: insert/delete-heavy.

We synthesise streams with those mixes over a Zipfian key space (Twitter
workloads are strongly skewed), which preserves the read/write balance
that drives Fig. 11's result shape.  The mixes below are stated in the
module so a user with trace access can swap in the real ratios.
"""

from __future__ import annotations

from typing import Iterator

from .micro import Op
from .ycsb import mix_stream

__all__ = ["TWITTER_MIXES", "twitter_stream"]

TWITTER_MIXES = {
    # verb probabilities per cluster type (synthesised; see module doc).
    "STORAGE": {"SEARCH": 0.9, "UPDATE": 0.1},
    "COMPUTE": {"SEARCH": 0.4, "UPDATE": 0.6},
    "TRANSIENT": {"SEARCH": 0.3, "INSERT": 0.35, "DELETE": 0.35},
}


def twitter_stream(cluster: str, cli_id: int, total_keys: int,
                   value_size: int, seed: int = 0) -> Iterator[Op]:
    try:
        mix = TWITTER_MIXES[cluster.upper()]
    except KeyError:
        raise ValueError(f"unknown Twitter cluster {cluster!r}") from None
    return mix_stream(mix, cli_id, total_keys, value_size, seed=seed)
