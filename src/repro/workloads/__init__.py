"""Workload generators and the multi-client driver."""

from .micro import Op, load_ops, micro_key, micro_stream
from .runner import RunResult, WorkloadRunner
from .twitter import TWITTER_MIXES, twitter_stream
from .ycsb import YCSB_MIXES, mix_stream, ycsb_key, ycsb_load_ops, ycsb_stream
from .zipf import LatestGenerator, ScrambledZipfian, ZipfianGenerator

__all__ = [
    "Op",
    "load_ops",
    "micro_key",
    "micro_stream",
    "RunResult",
    "WorkloadRunner",
    "TWITTER_MIXES",
    "twitter_stream",
    "YCSB_MIXES",
    "mix_stream",
    "ycsb_key",
    "ycsb_load_ops",
    "ycsb_stream",
    "LatestGenerator",
    "ScrambledZipfian",
    "ZipfianGenerator",
]
