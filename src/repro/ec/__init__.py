"""Erasure coding: GF(256), Reed-Solomon, XOR array codes, block stripes."""

from .gf256 import gf_div, gf_inv, gf_mul, gf_pow
from .rs import ReedSolomon
from .stripe import (
    RSStripeCodec,
    StripeCodec,
    StripeLayout,
    XorStripeCodec,
    make_codec,
)
from .xorcode import RDP, XCode, XorArrayCode, is_prime

__all__ = [
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_pow",
    "ReedSolomon",
    "RSStripeCodec",
    "StripeCodec",
    "StripeLayout",
    "XorStripeCodec",
    "make_codec",
    "RDP",
    "XCode",
    "XorArrayCode",
    "is_prime",
]
