"""XOR-based array codes: a generic peeling framework, the true X-Code of
Xu & Bruck (the code the paper names), and RDP-style row+diagonal parity
(the same XOR-only family, used by the block-granular stripes).

An array code stores an (nrows x ncols) array of equal-width byte cells,
one column per node, with parity *equations*: sets of cells whose XOR is
zero.  Erasure of up to two whole columns is decoded by *peeling* —
repeatedly finding an equation with exactly one unknown cell and solving
it — which generalises the "diagonal chasing" of both X-Code and RDP.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from ..errors import CodingError

__all__ = ["XorArrayCode", "XCode", "RDP", "is_prime"]

Cell = Tuple[int, int]  # (row, col)


def is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


class XorArrayCode:
    """Base class: geometry + equations, encode and peel-decode.

    Subclasses define ``nrows``, ``ncols``, ``data_cells`` (in layout
    order) and ``equations`` — a list of ``(cells, parity_cell)`` pairs in
    an order such that each parity cell depends only on data cells or
    earlier parity cells.
    """

    def __init__(self, nrows: int, ncols: int,
                 data_cells: Sequence[Cell],
                 equations: Sequence[Tuple[Sequence[Cell], Cell]]):
        self.nrows = nrows
        self.ncols = ncols
        self.data_cells = list(data_cells)
        self.equations = [(list(cells), parity) for cells, parity in equations]
        self._validate()

    def _validate(self) -> None:
        seen_parity: Set[Cell] = set()
        data = set(self.data_cells)
        for cells, parity in self.equations:
            if parity not in cells:
                raise CodingError("parity cell must be a member of its equation")
            for cell in cells:
                r, c = cell
                if not (0 <= r < self.nrows and 0 <= c < self.ncols):
                    raise CodingError(f"cell {cell} outside array")
            if parity in data:
                raise CodingError(f"parity cell {parity} marked as data")
            if parity in seen_parity:
                raise CodingError(f"two equations define parity {parity}")
            for cell in cells:
                if cell != parity and cell not in data and cell not in seen_parity:
                    raise CodingError(
                        f"equation uses cell {cell} before it is defined"
                    )
            seen_parity.add(parity)

    # -- array helpers ---------------------------------------------------------

    def empty_array(self, width: int) -> np.ndarray:
        return np.zeros((self.nrows, self.ncols, width), dtype=np.uint8)

    def encode(self, array: np.ndarray) -> np.ndarray:
        """Fill all parity cells in place (data cells must be set)."""
        for cells, parity in self.equations:
            acc = array[parity]
            acc[:] = 0
            for r, c in cells:
                if (r, c) != parity:
                    np.bitwise_xor(acc, array[r, c], out=acc)
        return array

    def check(self, array: np.ndarray) -> bool:
        """Whether every parity equation XORs to zero."""
        for cells, _parity in self.equations:
            acc = np.zeros(array.shape[2], dtype=np.uint8)
            for cell in cells:
                np.bitwise_xor(acc, array[cell], out=acc)
            if acc.any():
                return False
        return True

    def decode(self, array: np.ndarray, erased_cols: Iterable[int]) -> np.ndarray:
        """Reconstruct the cells of the erased columns in place.

        Works for any erasure pattern the code can peel; X-Code and RDP
        guarantee success for up to two erased columns.
        """
        erased = set(erased_cols)
        if not erased:
            return array
        for c in erased:
            if not 0 <= c < self.ncols:
                raise CodingError(f"erased column {c} out of range")
        unknown: Set[Cell] = {(r, c) for c in erased for r in range(self.nrows)}
        for cell in unknown:
            array[cell] = 0
        progress = True
        while unknown and progress:
            progress = False
            for cells, _parity in self.equations:
                unk = [cell for cell in cells if cell in unknown]
                if len(unk) != 1:
                    continue
                target = unk[0]
                acc = array[target]
                acc[:] = 0
                for cell in cells:
                    if cell != target:
                        np.bitwise_xor(acc, array[cell], out=acc)
                unknown.remove(target)
                progress = True
        if unknown:
            raise CodingError(
                f"cannot peel erasure pattern {sorted(erased)} "
                f"({len(unknown)} cells unresolved)"
            )
        return array

    # -- flat data mapping -------------------------------------------------------

    def data_cell_count(self) -> int:
        return len(self.data_cells)

    def load_data(self, array: np.ndarray, payload: np.ndarray) -> None:
        """Scatter a flat byte payload into the data cells (layout order)."""
        width = array.shape[2]
        needed = width * len(self.data_cells)
        if len(payload) != needed:
            raise CodingError(f"payload must be {needed} bytes, got {len(payload)}")
        for i, cell in enumerate(self.data_cells):
            array[cell] = payload[i * width:(i + 1) * width]

    def extract_data(self, array: np.ndarray) -> np.ndarray:
        width = array.shape[2]
        out = np.empty(width * len(self.data_cells), dtype=np.uint8)
        for i, cell in enumerate(self.data_cells):
            out[i * width:(i + 1) * width] = array[cell]
        return out


class XCode(XorArrayCode):
    """X-Code(p) [Xu & Bruck '99]: a p x p array for prime p.

    Rows 0..p-3 hold data; rows p-2 and p-1 hold the two diagonal parities
    (slopes +1 and -1).  Every column lives on a distinct node, so each node
    stores both data and parity — matching §3.3.1's "each MN in a coding
    group storing both PARITY blocks and DATA blocks" — and any two column
    (node) erasures are decodable.
    """

    def __init__(self, p: int):
        if not is_prime(p):
            raise CodingError(f"X-Code requires prime p, got {p}")
        if p < 3:
            raise CodingError("X-Code needs p >= 3")
        self.p = p
        data_cells = [(r, c) for c in range(p) for r in range(p - 2)]
        equations: List[Tuple[List[Cell], Cell]] = []
        for i in range(p):
            diag1 = [(k, (i + k + 2) % p) for k in range(p - 2)]
            diag1.append((p - 2, i))
            equations.append((diag1, (p - 2, i)))
        for i in range(p):
            diag2 = [(k, (i - k - 2) % p) for k in range(p - 2)]
            diag2.append((p - 1, i))
            equations.append((diag2, (p - 1, i)))
        super().__init__(p, p, data_cells, equations)


class RDP(XorArrayCode):
    """Row-Diagonal Parity, shortened to *k* data columns.

    Geometry: (p-1) rows, k data columns, one row-parity column P and one
    diagonal-parity column Q (p prime, k <= p-1).  Q's diagonals run over
    the data *and* P columns, so encode order is P then Q.  This is the
    XOR-only, two-erasure-tolerant construction the Aceso stripes use at
    block granularity: P is a plain XOR of the data blocks (single-XOR
    recovery of one lost block, as in §3.3.2's decoding description) and Q
    adds the second fault tolerance dimension.
    """

    def __init__(self, p: int, k: int):
        if not is_prime(p):
            raise CodingError(f"RDP requires prime p, got {p}")
        if not 1 <= k <= p - 1:
            raise CodingError(f"RDP(p={p}) supports 1..{p - 1} data columns")
        self.p = p
        self.k = k
        nrows = p - 1
        # Columns: 0..k-1 data, k = P, k+1 = Q.  (The construction's virtual
        # zero columns k..p-2 are simply omitted from the equations.)
        self.p_col = k
        self.q_col = k + 1
        data_cells = [(r, c) for c in range(k) for r in range(nrows)]
        equations: List[Tuple[List[Cell], Cell]] = []
        for r in range(nrows):
            cells = [(r, c) for c in range(k)] + [(r, self.p_col)]
            equations.append((cells, (r, self.p_col)))
        for i in range(nrows):  # diagonal p-1 is never stored
            cells: List[Cell] = []
            for c in range(k):
                r = (i - c) % p
                if r < nrows:
                    cells.append((r, c))
            r = (i - (p - 1)) % p  # P column sits at construction col p-1
            if r < nrows:
                cells.append((r, self.p_col))
            cells.append((i, self.q_col))
            equations.append((cells, (i, self.q_col)))
        super().__init__(nrows, k + 2, data_cells, equations)

    def diagonal_of(self, row: int, col: int) -> int:
        """Construction diagonal index of a data cell (for delta updates)."""
        if col >= self.k:
            raise CodingError("diagonal_of applies to data columns")
        return (row + col) % self.p
