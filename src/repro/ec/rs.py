"""Systematic Reed-Solomon erasure code RS(k, m) over GF(2^8).

This is the GF-based alternative the paper compares against X-Code in
Table 2.  The encoding matrix is a Cauchy matrix, so *any* k of the k+m
shards reconstruct the originals.  Like every linear code, parity can be
updated from a data delta alone (``parity_delta``), which is what Aceso's
delta-based space reclamation (§3.3.3) relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CodingError
from .gf256 import (
    gf_addmul_buffer,
    gf_inv,
    gf_matrix_invert,
    gf_matrix_vector,
    gf_mul,
)

__all__ = ["ReedSolomon"]


def _cauchy_matrix(k: int, m: int) -> List[List[int]]:
    """m x k Cauchy matrix: 1 / (x_i ^ y_j) with disjoint x, y sets."""
    xs = list(range(k, k + m))
    ys = list(range(k))
    return [[gf_inv(x ^ y) for y in ys] for x in xs]


class ReedSolomon:
    """RS(k, m): k data shards, m parity shards, tolerates any m erasures."""

    def __init__(self, k: int, m: int):
        if k < 1 or m < 1:
            raise CodingError("RS needs k >= 1 and m >= 1")
        if k + m > 256:
            raise CodingError("RS over GF(256) supports at most 256 shards")
        self.k = k
        self.m = m
        self.parity_matrix = _cauchy_matrix(k, m)
        self._decode_cache: Dict[Tuple[int, ...], List[List[int]]] = {}

    # -- encode ---------------------------------------------------------------

    def encode(self, data: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Compute the m parity shards for k equal-length data shards."""
        self._check_data(data)
        return gf_matrix_vector(self.parity_matrix, data)

    # -- linear delta updates ---------------------------------------------------

    def parity_delta(self, data_index: int,
                     delta: np.ndarray) -> List[np.ndarray]:
        """Contribution of a data-shard delta to each parity shard.

        If data shard *i* changes by ``delta`` (XOR of old and new), parity
        shard *j* changes by ``coef[j][i] * delta``.
        """
        if not 0 <= data_index < self.k:
            raise CodingError(f"data index {data_index} out of range")
        out = []
        for j in range(self.m):
            acc = np.zeros(len(delta), dtype=np.uint8)
            gf_addmul_buffer(acc, self.parity_matrix[j][data_index], delta)
            out.append(acc)
        return out

    def apply_parity_delta(self, parity: np.ndarray, data_index: int,
                           parity_index: int, delta: np.ndarray) -> None:
        """parity ^= coef * delta, in place."""
        coef = self.parity_matrix[parity_index][data_index]
        gf_addmul_buffer(parity, coef, delta)

    # -- decode ---------------------------------------------------------------

    def reconstruct(self, shards: Sequence[Optional[np.ndarray]]
                    ) -> List[np.ndarray]:
        """Fill in missing shards (``None`` entries); returns all k+m.

        Raises :class:`CodingError` when more than m shards are missing.
        """
        n = self.k + self.m
        if len(shards) != n:
            raise CodingError(f"expected {n} shards, got {len(shards)}")
        missing = [i for i, s in enumerate(shards) if s is None]
        if not missing:
            return list(shards)  # type: ignore[arg-type]
        if len(missing) > self.m:
            raise CodingError(
                f"{len(missing)} erasures exceed tolerance m={self.m}"
            )
        present = [i for i, s in enumerate(shards) if s is not None]
        width = len(shards[present[0]])  # type: ignore[arg-type]
        if any(len(shards[i]) != width for i in present):  # type: ignore
            raise CodingError("shard length mismatch")

        # Recover the k data shards from any k available shards.
        chosen = present[: self.k]
        if len(chosen) < self.k:
            raise CodingError("fewer than k shards available")
        decode = self._decode_matrix(tuple(chosen))
        data = gf_matrix_vector(
            decode, [shards[i] for i in chosen]  # type: ignore[misc]
        )
        full: List[np.ndarray] = list(data)
        parity = gf_matrix_vector(self.parity_matrix, data)
        full.extend(parity)
        # Preserve the caller's arrays for shards that were present.
        for i in present:
            full[i] = shards[i]  # type: ignore[assignment]
        return full

    def _decode_matrix(self, rows: Tuple[int, ...]) -> List[List[int]]:
        cached = self._decode_cache.get(rows)
        if cached is not None:
            return cached
        generator: List[List[int]] = []
        for r in rows:
            if r < self.k:
                generator.append([1 if c == r else 0 for c in range(self.k)])
            else:
                generator.append(list(self.parity_matrix[r - self.k]))
        inverse = gf_matrix_invert(generator)
        self._decode_cache[rows] = inverse
        return inverse

    # -- misc -------------------------------------------------------------------

    def _check_data(self, data: Sequence[np.ndarray]) -> None:
        if len(data) != self.k:
            raise CodingError(f"expected {self.k} data shards, got {len(data)}")
        width = len(data[0])
        if any(len(d) != width for d in data):
            raise CodingError("data shard length mismatch")
