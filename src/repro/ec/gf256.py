"""GF(2^8) arithmetic for Reed-Solomon coding.

The field is GF(2^8) with the AES/ISA-L-standard primitive polynomial
x^8 + x^4 + x^3 + x^2 + 1 (0x11D).  Scalar ops use log/antilog tables;
vector ops (scalar times a byte buffer) use a 256-entry product table per
scalar so that numpy does the heavy lifting — this is the GF multiply the
paper's Table 2 measures against plain XOR.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_mul_buffer",
    "gf_addmul_buffer",
    "gf_matrix_invert",
    "gf_matrix_vector",
    "EXP_TABLE",
    "LOG_TABLE",
]

_POLY = 0x11D

# Build exp/log tables for generator 2 (primitive for 0x11D).
EXP_TABLE = np.zeros(512, dtype=np.uint8)
LOG_TABLE = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    EXP_TABLE[_i] = _x
    LOG_TABLE[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _POLY
EXP_TABLE[255:510] = EXP_TABLE[0:255]  # wraparound for a+b < 510

# Per-scalar multiplication tables, built lazily: _MUL_TABLES[s][b] = s*b.
_MUL_TABLES: dict = {}


def _mul_table(scalar: int) -> np.ndarray:
    table = _MUL_TABLES.get(scalar)
    if table is None:
        if scalar == 0:
            table = np.zeros(256, dtype=np.uint8)
        else:
            logs = LOG_TABLE[1:] + LOG_TABLE[scalar]
            table = np.zeros(256, dtype=np.uint8)
            table[1:] = EXP_TABLE[logs]
        _MUL_TABLES[scalar] = table
    return table


def gf_mul(a: int, b: int) -> int:
    """Field product of two elements."""
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]])


def gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(256)")
    return int(EXP_TABLE[255 - LOG_TABLE[a]])


def gf_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(EXP_TABLE[(LOG_TABLE[a] - LOG_TABLE[b]) % 255])


def gf_pow(a: int, n: int) -> int:
    if n == 0:
        return 1
    if a == 0:
        return 0
    return int(EXP_TABLE[(LOG_TABLE[a] * n) % 255])


def gf_mul_buffer(scalar: int, buf: np.ndarray) -> np.ndarray:
    """scalar * buf element-wise over GF(256); *buf* is uint8."""
    return _mul_table(scalar)[buf]


def gf_addmul_buffer(acc: np.ndarray, scalar: int, buf: np.ndarray) -> None:
    """acc ^= scalar * buf, in place (the RS encode/decode kernel)."""
    if scalar == 0:
        return
    if scalar == 1:
        np.bitwise_xor(acc, buf, out=acc)
    else:
        np.bitwise_xor(acc, _mul_table(scalar)[buf], out=acc)


def gf_matrix_vector(matrix: Sequence[Sequence[int]],
                     shards: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Multiply a coefficient matrix by a vector of byte buffers."""
    width = len(shards[0])
    out: List[np.ndarray] = []
    for row in matrix:
        acc = np.zeros(width, dtype=np.uint8)
        for coef, shard in zip(row, shards):
            gf_addmul_buffer(acc, coef, shard)
        out.append(acc)
    return out


def gf_matrix_invert(matrix: Sequence[Sequence[int]]) -> List[List[int]]:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination."""
    n = len(matrix)
    aug = [list(row) + [1 if i == j else 0 for j in range(n)]
           for i, row in enumerate(matrix)]
    if any(len(row) != 2 * n for row in aug):
        raise ValueError("matrix is not square")
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r][col]), None)
        if pivot is None:
            raise ValueError("matrix is singular over GF(256)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = gf_inv(aug[col][col])
        aug[col] = [gf_mul(v, inv_p) for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col]:
                factor = aug[r][col]
                aug[r] = [v ^ gf_mul(factor, p)
                          for v, p in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]
