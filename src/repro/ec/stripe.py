"""Block-granular stripe codecs and stripe layout.

Aceso performs erasure coding on coarse-grained memory blocks (§3.3.1):
a *coding stripe* is k DATA blocks + m PARITY blocks, each on a distinct MN
of one coding group, with consecutive stripes rotated across the group for
load balance.  Two codecs are provided:

* :class:`XorStripeCodec` — the XOR-only family (X-Code/RDP construction):
  parity P is the plain XOR of the data blocks (so one lost block is a
  single XOR pass over surviving blocks, §3.3.2) and the diagonal parity Q
  provides the second fault-tolerance dimension;
* :class:`RSStripeCodec` — Reed-Solomon over GF(256), the slower GF-based
  alternative of Table 2.

Both are linear: ``parity_delta`` maps a data-block delta to per-parity
deltas, enabling the delta-based space reclamation of §3.3.3.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from ..errors import CodingError
from .rs import ReedSolomon
from .xorcode import RDP, is_prime

__all__ = ["StripeCodec", "XorStripeCodec", "RSStripeCodec", "StripeLayout",
           "make_codec"]


def _as_array(block: bytes, size: int) -> np.ndarray:
    if len(block) != size:
        raise CodingError(f"block of {len(block)} bytes, expected {size}")
    return np.frombuffer(bytes(block), dtype=np.uint8).copy()


class StripeCodec(abc.ABC):
    """Erasure codec over k data + m parity blocks of one fixed size."""

    name: str
    k: int
    m: int
    block_size: int

    @property
    def width(self) -> int:
        return self.k + self.m

    @abc.abstractmethod
    def encode(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Parity blocks for k data blocks."""

    @abc.abstractmethod
    def reconstruct(self, shards: Sequence[Optional[bytes]]) -> List[bytes]:
        """Fill the ``None`` entries of a k+m shard list (<= m missing)."""

    def parity_delta(self, data_index: int, delta: bytes) -> List[bytes]:
        """Per-parity XOR contributions of a data-block delta.

        Derived from linearity: the parity change equals the parity of a
        stripe holding only the delta.  Codecs may override with a cheaper
        closed form (RS does).
        """
        if not 0 <= data_index < self.k:
            raise CodingError(f"data index {data_index} out of range")
        zero = bytes(self.block_size)
        sparse = [zero] * self.k
        sparse[data_index] = bytes(delta)
        return self.encode(sparse)

    def apply_delta(self, parity: bytearray, parity_index: int,
                    data_index: int, delta: bytes) -> None:
        """parity ^= contribution(data_index -> parity_index, delta)."""
        contrib = self.parity_delta(data_index, delta)[parity_index]
        arr = np.frombuffer(memoryview(parity), dtype=np.uint8)
        np.bitwise_xor(arr, np.frombuffer(contrib, dtype=np.uint8), out=arr)

    @abc.abstractmethod
    def solve_one(self, data_index: int, known: dict,
                  parity0: bytes) -> bytes:
        """Recover one data *slice* element-wise from the first parity.

        ``known`` maps each other data position to the corresponding slice
        of its (folded) contents; ``parity0`` is the same slice of parity 0.
        Both codecs' first parity is element-wise in the byte offset, so
        degraded SEARCH (§3.4.1) can reconstruct just the slot region of a
        lost KV — the paper's "one XOR involving all DATA, DELTA, and
        PARITY blocks".
        """


class XorStripeCodec(StripeCodec):
    """RDP-construction XOR codec at block granularity."""

    name = "xor"

    def __init__(self, k: int, block_size: int, m: int = 2):
        if m == 1:
            # Single parity: plain XOR (RAID-5).  Kept for ablations.
            self._rdp = None
        elif m == 2:
            p = k + 1
            while not is_prime(p):
                p += 1
            self._rdp = RDP(p, k)
            rows = p - 1
            if block_size % rows:
                raise CodingError(
                    f"block size {block_size} not divisible by p-1={rows}"
                )
            self._row_width = block_size // rows
        else:
            raise CodingError("XOR codec supports m in (1, 2)")
        self.k = k
        self.m = m
        self.block_size = block_size

    # -- column packing -----------------------------------------------------

    def _to_column(self, block: bytes) -> np.ndarray:
        arr = _as_array(block, self.block_size)
        return arr.reshape(self._rdp.nrows, self._row_width)

    def _from_column(self, column: np.ndarray) -> bytes:
        return column.tobytes()

    def encode(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        if len(data_blocks) != self.k:
            raise CodingError(f"expected {self.k} data blocks")
        if self.m == 1:
            acc = np.zeros(self.block_size, dtype=np.uint8)
            for b in data_blocks:
                np.bitwise_xor(acc, _as_array(b, self.block_size), out=acc)
            return [acc.tobytes()]
        rdp = self._rdp
        array = rdp.empty_array(self._row_width)
        for c, block in enumerate(data_blocks):
            array[:, c, :] = self._to_column(block)
        rdp.encode(array)
        return [self._from_column(array[:, rdp.p_col, :]),
                self._from_column(array[:, rdp.q_col, :])]

    def reconstruct(self, shards: Sequence[Optional[bytes]]) -> List[bytes]:
        if len(shards) != self.width:
            raise CodingError(f"expected {self.width} shards")
        missing = [i for i, s in enumerate(shards) if s is None]
        if not missing:
            return [bytes(s) for s in shards]  # type: ignore[arg-type]
        if len(missing) > self.m:
            raise CodingError(f"{len(missing)} erasures exceed m={self.m}")
        if self.m == 1:
            acc = np.zeros(self.block_size, dtype=np.uint8)
            for s in shards:
                if s is not None:
                    np.bitwise_xor(acc, _as_array(s, self.block_size), out=acc)
            out = [bytes(s) if s is not None else acc.tobytes() for s in shards]
            return out
        rdp = self._rdp
        array = rdp.empty_array(self._row_width)
        for i, shard in enumerate(shards):
            if shard is not None:
                array[:, i, :] = self._to_column(shard)
        rdp.decode(array, missing)
        return [self._from_column(array[:, i, :]) for i in range(self.width)]

    def solve_one(self, data_index: int, known: dict,
                  parity0: bytes) -> bytes:
        if set(known) | {data_index} != set(range(self.k)):
            raise CodingError("solve_one needs every other data position")
        acc = np.frombuffer(bytes(parity0), dtype=np.uint8).copy()
        for _pos, slice_bytes in known.items():
            np.bitwise_xor(acc, np.frombuffer(slice_bytes, dtype=np.uint8),
                           out=acc)
        return acc.tobytes()

    def parity_delta(self, data_index: int, delta: bytes) -> List[bytes]:
        if not 0 <= data_index < self.k:
            raise CodingError(f"data index {data_index} out of range")
        if self.m == 1:
            return [bytes(delta)]
        # P changes by the delta itself; Q changes both directly (the data
        # cell's diagonal) and through P (the P column participates in Q's
        # diagonals in the RDP construction).
        rdp = self._rdp
        col = self._to_column(delta)
        q = np.zeros_like(col)
        for r in range(rdp.nrows):
            direct = (r + data_index) % rdp.p
            if direct < rdp.nrows:  # construction diagonal p-1 is not stored
                np.bitwise_xor(q[direct], col[r], out=q[direct])
            via_p = (r + rdp.p - 1) % rdp.p  # P sits at construction col p-1
            if via_p < rdp.nrows:
                np.bitwise_xor(q[via_p], col[r], out=q[via_p])
        return [bytes(delta), self._from_column(q)]


class RSStripeCodec(StripeCodec):
    """Reed-Solomon codec at block granularity (Table 2's GF-based rival)."""

    name = "rs"

    def __init__(self, k: int, block_size: int, m: int = 2):
        self._rs = ReedSolomon(k, m)
        self.k = k
        self.m = m
        self.block_size = block_size

    def encode(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        data = [_as_array(b, self.block_size) for b in data_blocks]
        return [p.tobytes() for p in self._rs.encode(data)]

    def reconstruct(self, shards: Sequence[Optional[bytes]]) -> List[bytes]:
        arrays = [None if s is None else _as_array(s, self.block_size)
                  for s in shards]
        return [a.tobytes() for a in self._rs.reconstruct(arrays)]

    def parity_delta(self, data_index: int, delta: bytes) -> List[bytes]:
        arr = _as_array(delta, self.block_size)
        return [d.tobytes() for d in self._rs.parity_delta(data_index, arr)]

    def solve_one(self, data_index: int, known: dict,
                  parity0: bytes) -> bytes:
        if set(known) | {data_index} != set(range(self.k)):
            raise CodingError("solve_one needs every other data position")
        from .gf256 import gf_addmul_buffer, gf_inv, gf_mul_buffer

        coefs = self._rs.parity_matrix[0]
        acc = np.frombuffer(bytes(parity0), dtype=np.uint8).copy()
        for pos, slice_bytes in known.items():
            gf_addmul_buffer(acc, coefs[pos],
                             np.frombuffer(slice_bytes, dtype=np.uint8))
        return gf_mul_buffer(gf_inv(coefs[data_index]), acc).tobytes()


def make_codec(name: str, k: int, block_size: int, m: int = 2) -> StripeCodec:
    if name == "xor":
        return XorStripeCodec(k, block_size, m)
    if name == "rs":
        return RSStripeCodec(k, block_size, m)
    raise CodingError(f"unknown codec {name!r}")


class StripeLayout:
    """Placement of stripe positions onto the MNs of one coding group.

    Stripe *s* places position *j* (0..k-1 data, k..k+m-1 parity) on group
    member ``(s + j) mod n`` — the rotation that interleaves stripes so each
    MN holds both DATA and PARITY blocks (§3.3.1).
    """

    def __init__(self, group_members: Sequence[int], k: int, m: int):
        if len(group_members) != k + m:
            raise CodingError("group size must equal stripe width k+m")
        self.members = list(group_members)
        self.k = k
        self.m = m

    @property
    def width(self) -> int:
        return self.k + self.m

    def node_of(self, stripe_id: int, position: int) -> int:
        if not 0 <= position < self.width:
            raise CodingError(f"position {position} out of stripe")
        return self.members[(stripe_id + position) % self.width]

    def position_on(self, stripe_id: int, node_id: int) -> int:
        """Which stripe position lands on *node_id* for this stripe."""
        member = self.members.index(node_id)
        return (member - stripe_id) % self.width

    def data_nodes(self, stripe_id: int) -> List[int]:
        return [self.node_of(stripe_id, j) for j in range(self.k)]

    def parity_nodes(self, stripe_id: int) -> List[int]:
        return [self.node_of(stripe_id, self.k + j) for j in range(self.m)]

    def primary_parity_node(self, stripe_id: int) -> int:
        """The P-parity holder — where DELTA blocks for this stripe live."""
        return self.node_of(stripe_id, self.k)
