"""Analytic models complementing the simulator."""

from .capacity import (
    OpCost,
    capacity_report,
    op_cost,
    predicted_capacity,
    predicted_ratios,
)

__all__ = ["OpCost", "capacity_report", "op_cost", "predicted_capacity",
           "predicted_ratios"]
