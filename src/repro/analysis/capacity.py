"""Analytic capacity model: back-of-envelope throughput from a config.

This is the §2.4 arithmetic of the paper, made executable: each request
type is a bag of verbs; each verb costs the destination NIC
``max(op_cost + atomic_cost, bytes / bandwidth)``; aggregate saturation
throughput is (number of MN NICs) / (per-op MN-side cost).  The model
predicts who wins and by what factor *before* running the simulator, and
the test suite checks the simulator agrees with it at saturation.

It deliberately ignores queueing, client counts, and background traffic —
it is an upper bound and a ratio predictor, not a latency model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import SystemConfig
from ..rdma.verbs import WIRE_HEADER

__all__ = ["VerbCost", "op_cost", "predicted_capacity", "predicted_ratios",
           "capacity_report"]

#: (payload bytes, is_atomic) of each verb a request issues at MNs.
VerbCost = Tuple[int, bool]


@dataclass(frozen=True)
class OpCost:
    """MN-side cost breakdown of one request type."""

    verbs: int
    atomic_verbs: int
    bytes_moved: int
    seconds: float                 # total MN NIC occupancy per op

    def capacity(self, num_mns: int) -> float:
        """Aggregate saturation throughput (ops/s) across the pool."""
        return num_mns / self.seconds if self.seconds else float("inf")


def _verb_seconds(cfg: SystemConfig, payload: int, atomic: bool) -> float:
    nic = cfg.cluster.nic
    wire = payload + WIRE_HEADER
    op = 1.0 / nic.iops + (1.0 / nic.atomic_iops if atomic else 0.0)
    return max(op, wire / nic.bandwidth)


def _slot_bytes(cfg: SystemConfig) -> int:
    kv = cfg.cluster.kv_size
    return ((kv + 63) // 64) * 64


def _bucket_bytes(cfg: SystemConfig) -> int:
    slot = 16 if cfg.ft.slot_format == "wide16" else 8
    return cfg.cluster.bucket_slots * slot


def _verbs_for(cfg: SystemConfig, op: str) -> List[VerbCost]:
    """The MN-side verb bag of one request under this configuration."""
    kv = _slot_bytes(cfg)
    bucket = _bucket_bytes(cfg)
    slot_read = 16 if cfg.ft.slot_format == "wide16" else 8
    replicated = cfg.ft.index_mode == "replication"
    r = cfg.ft.replication_factor

    if op == "SEARCH":
        if cfg.ft.cache_policy == "addr_value":
            return [(kv, False), (slot_read, False)]
        # value-only cache: validate against the slot's bucket
        return [(kv, False), (bucket, False)]

    verbs: List[VerbCost] = []
    payload = kv if op != "DELETE" else 64  # tombstones use the 64 B class
    if replicated:
        verbs += [(payload, False)] * r          # KV replicas
        verbs += [(8, True)] * r                 # backup + primary CAS
    else:
        verbs += [(payload, False)]              # the KV pair
        verbs += [(payload, False)]              # its delta (Fig. 6)
        verbs += [(8, True)]                     # the commit CAS
    if op == "INSERT":
        verbs += [(bucket, False), (bucket, False)]  # bucket query
    return verbs


def op_cost(cfg: SystemConfig, op: str) -> OpCost:
    verbs = _verbs_for(cfg, op)
    seconds = sum(_verb_seconds(cfg, p, a) for p, a in verbs)
    return OpCost(
        verbs=len(verbs),
        atomic_verbs=sum(1 for _p, a in verbs if a),
        bytes_moved=sum(p for p, _a in verbs),
        seconds=seconds,
    )


def predicted_capacity(cfg: SystemConfig, op: str) -> float:
    """Saturation throughput (ops/s) for one request type."""
    return op_cost(cfg, op).capacity(cfg.cluster.num_mns)


def predicted_ratios(aceso: SystemConfig, fusee: SystemConfig
                     ) -> Dict[str, float]:
    """Aceso : FUSEE capacity ratio per op (the Fig. 8 prediction)."""
    out = {}
    for op in ("INSERT", "UPDATE", "SEARCH", "DELETE"):
        out[op] = (predicted_capacity(aceso, op)
                   / predicted_capacity(fusee, op))
    return out


def capacity_report(cfg: SystemConfig) -> str:
    """Human-readable cost table for one configuration."""
    lines = [f"capacity model for {cfg.name!r} "
             f"({cfg.cluster.num_mns} MNs)"]
    for op in ("INSERT", "UPDATE", "SEARCH", "DELETE"):
        cost = op_cost(cfg, op)
        lines.append(
            f"  {op:<7} {cost.verbs} verbs ({cost.atomic_verbs} atomic, "
            f"{cost.bytes_moved} B) -> {cost.seconds * 1e6:.2f} us/op, "
            f"cap {cost.capacity(cfg.cluster.num_mns) / 1e6:.2f} Mops"
        )
    return "\n".join(lines)
